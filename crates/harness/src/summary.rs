//! Mergeable, order-independent aggregation of [`RunStats`] across a sweep.
//!
//! Every field is an exact integer accumulator (or built from them), so
//! `observe`/`merge` are commutative and associative: the summary of a sweep
//! is bit-identical no matter how runs were scheduled across workers or in
//! which order partial summaries were combined. Derived ratios are computed
//! on demand from the exact sums.

use spcp_sim::{Histogram, MeanAccumulator};
use spcp_system::metrics::LATENCY_BUCKETS;
use spcp_system::RunStats;

/// Exact aggregate of the [`RunStats`] of many runs.
///
/// # Examples
///
/// ```
/// use spcp_harness::SweepSummary;
///
/// let a = SweepSummary::new();
/// let mut b = SweepSummary::new();
/// b.merge(&a);
/// assert_eq!(b, SweepSummary::new());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSummary {
    /// Number of runs aggregated.
    pub runs: u64,
    /// Total memory operations executed.
    pub total_ops: u64,
    /// Load operations.
    pub loads: u64,
    /// Store operations.
    pub stores: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Upgrade (S→M) transactions.
    pub upgrades: u64,
    /// Communicating L2 misses.
    pub comm_misses: u64,
    /// Non-communicating L2 misses.
    pub noncomm_misses: u64,
    /// Sum of per-run execution cycle counts.
    pub exec_cycles: u64,
    /// Longest single run, in cycles.
    pub max_exec_cycles: u64,
    /// Miss latency distribution (exact integer moments).
    pub miss_latency: MeanAccumulator,
    /// Miss latency histogram over the paper's buckets.
    pub miss_latency_hist: Histogram,
    /// Messages injected into the NoC.
    pub noc_messages: u64,
    /// Bytes injected into the NoC.
    pub noc_bytes_injected: u64,
    /// Byte·hops moved (the paper's bandwidth measure).
    pub noc_byte_hops: u64,
    /// Control-message byte·hops.
    pub noc_ctrl_byte_hops: u64,
    /// Cycles lost to link contention.
    pub noc_contention_cycles: u64,
    /// Snoop probes delivered.
    pub snoop_probes: u64,
    /// Destination-set predictions made.
    pub predictions: u64,
    /// Predictions whose set covered all actual sharers.
    pub pred_sufficient: u64,
    /// Sufficient predictions on communicating misses.
    pub pred_sufficient_comm: u64,
    /// Predictions that missed a sharer.
    pub pred_insufficient: u64,
    /// Directory indirections taken after insufficient predictions.
    pub indirections: u64,
    /// Sum of predicted destination-set sizes.
    pub predicted_set_sum: u64,
    /// Sum of actual sharer-set sizes.
    pub actual_set_sum: u64,
}

impl Default for SweepSummary {
    fn default() -> Self {
        Self::new()
    }
}

impl SweepSummary {
    /// An empty summary.
    pub fn new() -> Self {
        SweepSummary {
            runs: 0,
            total_ops: 0,
            loads: 0,
            stores: 0,
            l1_hits: 0,
            l2_hits: 0,
            l2_misses: 0,
            upgrades: 0,
            comm_misses: 0,
            noncomm_misses: 0,
            exec_cycles: 0,
            max_exec_cycles: 0,
            miss_latency: MeanAccumulator::new(),
            miss_latency_hist: Histogram::with_bounds(&LATENCY_BUCKETS),
            noc_messages: 0,
            noc_bytes_injected: 0,
            noc_byte_hops: 0,
            noc_ctrl_byte_hops: 0,
            noc_contention_cycles: 0,
            snoop_probes: 0,
            predictions: 0,
            pred_sufficient: 0,
            pred_sufficient_comm: 0,
            pred_insufficient: 0,
            indirections: 0,
            predicted_set_sum: 0,
            actual_set_sum: 0,
        }
    }

    /// Folds one run's stats into the summary.
    pub fn observe(&mut self, stats: &RunStats) {
        self.runs += 1;
        self.total_ops += stats.total_ops;
        self.loads += stats.loads;
        self.stores += stats.stores;
        self.l1_hits += stats.l1_hits;
        self.l2_hits += stats.l2_hits;
        self.l2_misses += stats.l2_misses;
        self.upgrades += stats.upgrades;
        self.comm_misses += stats.comm_misses;
        self.noncomm_misses += stats.noncomm_misses;
        self.exec_cycles += stats.exec_cycles;
        self.max_exec_cycles = self.max_exec_cycles.max(stats.exec_cycles);
        self.miss_latency.merge(&stats.miss_latency);
        self.miss_latency_hist.merge(&stats.miss_latency_hist);
        self.noc_messages += stats.noc.messages;
        self.noc_bytes_injected += stats.noc.bytes_injected;
        self.noc_byte_hops += stats.noc.byte_hops;
        self.noc_ctrl_byte_hops += stats.noc.ctrl_byte_hops;
        self.noc_contention_cycles += stats.noc.contention_cycles;
        self.snoop_probes += stats.snoop_probes;
        self.predictions += stats.predictions;
        self.pred_sufficient += stats.pred_sufficient;
        self.pred_sufficient_comm += stats.pred_sufficient_comm;
        self.pred_insufficient += stats.pred_insufficient;
        self.indirections += stats.indirections;
        self.predicted_set_sum += stats.predicted_set_sum;
        self.actual_set_sum += stats.actual_set_sum;
    }

    /// Merges another partial summary into this one.
    ///
    /// Exact and commutative: `a.merge(&b)` equals `b.merge(&a)` field for
    /// field, which the determinism tests assert under shuffled merge
    /// orders.
    pub fn merge(&mut self, other: &SweepSummary) {
        self.runs += other.runs;
        self.total_ops += other.total_ops;
        self.loads += other.loads;
        self.stores += other.stores;
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
        self.upgrades += other.upgrades;
        self.comm_misses += other.comm_misses;
        self.noncomm_misses += other.noncomm_misses;
        self.exec_cycles += other.exec_cycles;
        self.max_exec_cycles = self.max_exec_cycles.max(other.max_exec_cycles);
        self.miss_latency.merge(&other.miss_latency);
        self.miss_latency_hist.merge(&other.miss_latency_hist);
        self.noc_messages += other.noc_messages;
        self.noc_bytes_injected += other.noc_bytes_injected;
        self.noc_byte_hops += other.noc_byte_hops;
        self.noc_ctrl_byte_hops += other.noc_ctrl_byte_hops;
        self.noc_contention_cycles += other.noc_contention_cycles;
        self.snoop_probes += other.snoop_probes;
        self.predictions += other.predictions;
        self.pred_sufficient += other.pred_sufficient;
        self.pred_sufficient_comm += other.pred_sufficient_comm;
        self.pred_insufficient += other.pred_insufficient;
        self.indirections += other.indirections;
        self.predicted_set_sum += other.predicted_set_sum;
        self.actual_set_sum += other.actual_set_sum;
    }

    /// Pooled prediction accuracy, or 0.0 with no predictions.
    pub fn accuracy(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.pred_sufficient as f64 / self.predictions as f64
        }
    }

    /// Pooled communicating-miss ratio, or 0.0 with no misses.
    pub fn comm_ratio(&self) -> f64 {
        let total = self.comm_misses + self.noncomm_misses;
        if total == 0 {
            0.0
        } else {
            self.comm_misses as f64 / total as f64
        }
    }

    /// Pooled mean miss latency in cycles.
    pub fn mean_miss_latency(&self) -> f64 {
        self.miss_latency.mean()
    }

    /// Mean predicted destination-set size, or 0.0 with no predictions.
    pub fn mean_predicted_set(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.predicted_set_sum as f64 / self.predictions as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_stats(ops: u64, cycles: u64) -> RunStats {
        let mut s = RunStats {
            total_ops: ops,
            loads: ops / 2,
            stores: ops - ops / 2,
            exec_cycles: cycles,
            l2_misses: ops / 10,
            comm_misses: ops / 20,
            noncomm_misses: ops / 10 - ops / 20,
            predictions: ops / 20,
            pred_sufficient: ops / 25,
            ..Default::default()
        };
        s.noc.byte_hops = ops * 3;
        s.miss_latency.record(cycles / 100 + 1);
        s.miss_latency_hist.record(cycles / 100 + 1);
        s
    }

    #[test]
    fn observe_accumulates_exactly() {
        let mut sum = SweepSummary::new();
        sum.observe(&fake_stats(100, 1000));
        sum.observe(&fake_stats(200, 4000));
        assert_eq!(sum.runs, 2);
        assert_eq!(sum.total_ops, 300);
        assert_eq!(sum.exec_cycles, 5000);
        assert_eq!(sum.max_exec_cycles, 4000);
        assert_eq!(sum.noc_byte_hops, 900);
        assert_eq!(sum.miss_latency.count(), 2);
    }

    #[test]
    fn merge_is_commutative_and_matches_sequential_observe() {
        let runs: Vec<RunStats> = (1..=6).map(|i| fake_stats(i * 37, i * 911)).collect();

        let mut sequential = SweepSummary::new();
        for r in &runs {
            sequential.observe(r);
        }

        // Split across three "workers" and merge in two different orders.
        let mut parts: Vec<SweepSummary> = Vec::new();
        for chunk in runs.chunks(2) {
            let mut p = SweepSummary::new();
            for r in chunk {
                p.observe(r);
            }
            parts.push(p);
        }
        let mut fwd = SweepSummary::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = SweepSummary::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd, sequential);
        assert_eq!(rev, sequential);
    }

    #[test]
    fn derived_ratios() {
        let mut sum = SweepSummary::new();
        sum.observe(&fake_stats(100, 1000));
        assert!(sum.accuracy() > 0.0);
        assert!(sum.comm_ratio() > 0.0 && sum.comm_ratio() <= 1.0);
        assert!(sum.mean_miss_latency() > 0.0);
        assert!(sum.mean_predicted_set() >= 0.0);
    }

    #[test]
    fn empty_summary_ratios_are_zero() {
        let s = SweepSummary::new();
        assert_eq!(s.accuracy(), 0.0);
        assert_eq!(s.comm_ratio(), 0.0);
        assert_eq!(s.mean_miss_latency(), 0.0);
    }
}
