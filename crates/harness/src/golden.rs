//! Golden-snapshot emit/verify for sweep results.
//!
//! Snapshots are a line-based text format (documented in
//! `docs/FORMATS.md`): one `[run …]` header per run followed by
//! `field = value` lines. Only exactly reproducible quantities — integers
//! and integer-derived moments — are snapshotted, so a golden file either
//! matches bit-for-bit or the simulator's behavior changed.
//!
//! Verification reads the file and compares strings; regeneration is gated
//! behind the `UPDATE_GOLDEN=1` environment variable so CI can never
//! silently rewrite its own reference data.

use std::fmt;
use std::fs;
use std::path::Path;

use spcp_system::RunStats;

use crate::engine::{RunResult, SweepResult};
use crate::matrix::RunSpec;

/// Magic first line of every golden file; bump the version when the field
/// set changes so stale files fail loudly instead of diffing confusingly.
pub const GOLDEN_HEADER: &str = "# spcp golden v1";

/// Renders the snapshot of one run.
pub fn snapshot_run(spec: &RunSpec, stats: &RunStats) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str(&format!(
        "[run {} {} seed={} machine={} cores={}]\n",
        spec.bench.name, spec.protocol_label, spec.seed, spec.machine_label, spec.machine.num_cores
    ));
    let mut field = |name: &str, value: u128| {
        out.push_str(&format!("{name} = {value}\n"));
    };
    field("total_ops", stats.total_ops as u128);
    field("loads", stats.loads as u128);
    field("stores", stats.stores as u128);
    field("l1_hits", stats.l1_hits as u128);
    field("l2_hits", stats.l2_hits as u128);
    field("l2_misses", stats.l2_misses as u128);
    field("upgrades", stats.upgrades as u128);
    field("comm_misses", stats.comm_misses as u128);
    field("noncomm_misses", stats.noncomm_misses as u128);
    field("exec_cycles", stats.exec_cycles as u128);
    field("miss_latency_sum", stats.miss_latency.sum());
    field("miss_latency_count", stats.miss_latency.count() as u128);
    field("noc_messages", stats.noc.messages as u128);
    field("noc_bytes_injected", stats.noc.bytes_injected as u128);
    field("noc_byte_hops", stats.noc.byte_hops as u128);
    field("noc_ctrl_byte_hops", stats.noc.ctrl_byte_hops as u128);
    field("noc_contention_cycles", stats.noc.contention_cycles as u128);
    field("snoop_probes", stats.snoop_probes as u128);
    field("predictions", stats.predictions as u128);
    field("pred_sufficient", stats.pred_sufficient as u128);
    field("pred_sufficient_comm", stats.pred_sufficient_comm as u128);
    field("pred_insufficient", stats.pred_insufficient as u128);
    field("indirections", stats.indirections as u128);
    field("predicted_set_sum", stats.predicted_set_sum as u128);
    field("actual_set_sum", stats.actual_set_sum as u128);
    field(
        "predictor_storage_bits",
        stats.predictor_storage_bits as u128,
    );
    field("filtered_predictions", stats.filtered_predictions as u128);
    field("migrations", stats.migrations as u128);
    out
}

/// Renders a whole sweep (runs in canonical matrix order).
pub fn render(result: &SweepResult) -> String {
    render_runs(&result.runs)
}

/// Renders a slice of run results.
pub fn render_runs(runs: &[RunResult]) -> String {
    let mut out = String::new();
    out.push_str(GOLDEN_HEADER);
    out.push('\n');
    for r in runs {
        out.push('\n');
        out.push_str(&snapshot_run(&r.spec, &r.stats));
    }
    out
}

/// Why a golden check failed.
#[derive(Debug)]
pub enum GoldenError {
    /// No golden file exists at the path yet.
    Missing {
        /// The expected file location.
        path: String,
    },
    /// The rendered snapshot differs from the stored one.
    Mismatch {
        /// The golden file location.
        path: String,
        /// 1-based line number of the first difference.
        line: usize,
        /// The stored line (empty if the file ended early).
        expected: String,
        /// The freshly rendered line (empty if the render ended early).
        actual: String,
    },
    /// Reading or writing the file failed.
    Io {
        /// The file location.
        path: String,
        /// The underlying error, stringified.
        error: String,
    },
}

impl fmt::Display for GoldenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoldenError::Missing { path } => write!(
                f,
                "golden file {path} does not exist; run with UPDATE_GOLDEN=1 to create it"
            ),
            GoldenError::Mismatch {
                path,
                line,
                expected,
                actual,
            } => write!(
                f,
                "golden mismatch at {path}:{line}\n  golden: {expected}\n  actual: {actual}\n\
                 rerun with UPDATE_GOLDEN=1 to accept the new behavior"
            ),
            GoldenError::Io { path, error } => write!(f, "golden io error at {path}: {error}"),
        }
    }
}

impl std::error::Error for GoldenError {}

/// True when the caller asked to regenerate goldens (`UPDATE_GOLDEN=1`).
pub fn update_requested() -> bool {
    std::env::var("UPDATE_GOLDEN")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Verifies `rendered` against the golden file at `path`, or rewrites the
/// file when [`update_requested`] is set.
///
/// Returns `Ok(true)` when the file was (re)written, `Ok(false)` when it
/// matched.
pub fn check_or_update(path: &Path, rendered: &str) -> Result<bool, GoldenError> {
    let path_str = path.display().to_string();
    if update_requested() {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent).map_err(|e| GoldenError::Io {
                path: path_str.clone(),
                error: e.to_string(),
            })?;
        }
        fs::write(path, rendered).map_err(|e| GoldenError::Io {
            path: path_str,
            error: e.to_string(),
        })?;
        return Ok(true);
    }
    let stored = match fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Err(GoldenError::Missing { path: path_str })
        }
        Err(e) => {
            return Err(GoldenError::Io {
                path: path_str,
                error: e.to_string(),
            })
        }
    };
    compare(&path_str, &stored, rendered)?;
    Ok(false)
}

/// Line-by-line comparison with a precise first-difference report.
fn compare(path: &str, stored: &str, rendered: &str) -> Result<(), GoldenError> {
    let mut golden_lines = stored.lines();
    let mut fresh_lines = rendered.lines();
    let mut line = 0;
    loop {
        line += 1;
        match (golden_lines.next(), fresh_lines.next()) {
            (None, None) => return Ok(()),
            (g, a) => {
                let g = g.unwrap_or("");
                let a = a.unwrap_or("");
                if g != a {
                    return Err(GoldenError::Mismatch {
                        path: path.to_string(),
                        line,
                        expected: g.to_string(),
                        actual: a.to_string(),
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SweepEngine;
    use crate::matrix::RunMatrix;
    use spcp_system::ProtocolKind;
    use spcp_workloads::suite;

    fn one_run() -> SweepResult {
        let matrix = RunMatrix::new()
            .bench(suite::by_name("fft").unwrap())
            .protocol("dir", ProtocolKind::Directory);
        SweepEngine::new(1).run(&matrix)
    }

    #[test]
    fn snapshot_has_header_and_run_block() {
        let text = render(&one_run());
        assert!(text.starts_with(GOLDEN_HEADER));
        assert!(text.contains("[run fft dir seed=7 machine=paper16 cores=16]"));
        assert!(text.contains("exec_cycles = "));
        assert!(text.contains("noc_byte_hops = "));
    }

    #[test]
    fn snapshot_is_reproducible() {
        assert_eq!(render(&one_run()), render(&one_run()));
    }

    #[test]
    fn compare_reports_first_divergent_line() {
        let err = compare("x", "a\nb\nc", "a\nB\nc").unwrap_err();
        match err {
            GoldenError::Mismatch {
                line,
                expected,
                actual,
                ..
            } => {
                assert_eq!(line, 2);
                assert_eq!(expected, "b");
                assert_eq!(actual, "B");
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn compare_catches_length_differences() {
        assert!(compare("x", "a\nb", "a").is_err());
        assert!(compare("x", "a", "a\nb").is_err());
        assert!(compare("x", "a\nb", "a\nb").is_ok());
    }

    #[test]
    fn missing_file_is_a_missing_error() {
        if update_requested() {
            // Under UPDATE_GOLDEN=1 the call would write instead of verify.
            return;
        }
        let err = check_or_update(Path::new("/nonexistent/dir/g.txt"), "x").unwrap_err();
        assert!(matches!(err, GoldenError::Missing { .. }));
        assert!(err.to_string().contains("UPDATE_GOLDEN=1"));
    }
}
