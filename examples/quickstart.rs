//! Quickstart: simulate one benchmark under the baseline directory
//! protocol and under SP-prediction, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use spcp::system::{CmpSystem, MachineConfig, PredictorKind, ProtocolKind, RunConfig};
use spcp::workloads::suite;

fn main() {
    // 1. Pick a workload model (x264, the paper's best case) and generate
    //    deterministic per-core op streams for a 16-core machine.
    let workload = suite::x264().generate(16, 42);
    println!(
        "workload: {} ({} ops across {} cores)",
        workload.name(),
        workload.total_ops(),
        workload.num_cores()
    );

    // 2. Run it on the paper's Table-4 machine under the baseline
    //    directory protocol...
    let machine = MachineConfig::paper_16core();
    let base = CmpSystem::run_workload(
        &workload,
        &RunConfig::new(machine.clone(), ProtocolKind::Directory),
    );

    // 3. ...and again with SP-prediction plugged into each L2 controller.
    let sp = CmpSystem::run_workload(
        &workload,
        &RunConfig::new(
            machine,
            ProtocolKind::Predicted(PredictorKind::sp_default()),
        ),
    );

    // 4. Compare.
    println!("\n{:<28} {:>12} {:>12}", "", "directory", "SP-predicted");
    println!(
        "{:<28} {:>12.1}% {:>12.1}%",
        "communicating misses",
        base.comm_ratio() * 100.0,
        sp.comm_ratio() * 100.0
    );
    println!(
        "{:<28} {:>12.1} {:>12.1}",
        "avg miss latency (cycles)",
        base.miss_latency.mean(),
        sp.miss_latency.mean()
    );
    println!(
        "{:<28} {:>12} {:>12}",
        "execution time (cycles)", base.exec_cycles, sp.exec_cycles
    );
    println!(
        "{:<28} {:>12} {:>12}",
        "indirections", base.indirections, sp.indirections
    );
    println!(
        "\nSP predicted {:.1}% of communicating misses correctly, cutting miss",
        sp.accuracy() * 100.0
    );
    println!(
        "latency by {:.1}% and execution time by {:.1}%.",
        (1.0 - sp.miss_latency.mean() / base.miss_latency.mean()) * 100.0,
        (1.0 - sp.exec_cycles as f64 / base.exec_cycles as f64) * 100.0
    );
}
