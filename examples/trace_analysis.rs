//! Collect a §3.2-style miss/sync trace, write it to disk, read it back,
//! and run the trace-driven characterization — the paper's §3 methodology
//! as a library workflow.
//!
//! ```sh
//! cargo run --release --example trace_analysis -- water-ns
//! ```

use spcp::system::{CmpSystem, MachineConfig, ProtocolKind, RunConfig};
use spcp::trace::{read_trace, write_trace, TraceAnalyzer};
use spcp::workloads::suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "water-ns".into());
    let spec = suite::by_name(&name).ok_or("unknown benchmark")?;

    // 1. Run the workload with trace collection enabled.
    let workload = spec.generate(16, 7);
    let stats = CmpSystem::run_workload(
        &workload,
        &RunConfig::new(MachineConfig::paper_16core(), ProtocolKind::Directory).tracing(),
    );
    println!("collected {} trace events from {name}", stats.trace.len());

    // 2. Round-trip through the on-disk format.
    let path = std::env::temp_dir().join(format!("{name}.spctrace"));
    let mut file = std::io::BufWriter::new(std::fs::File::create(&path)?);
    write_trace(&mut file, &stats.trace)?;
    drop(file);
    let events = read_trace(std::io::BufReader::new(std::fs::File::open(&path)?))?;
    assert_eq!(events, stats.trace);
    println!("round-tripped through {}", path.display());

    // 3. Characterize from the trace alone (no timing simulator needed).
    let a = TraceAnalyzer::from_events(16, &events);
    println!("\ntrace-driven characterization:");
    println!("  misses               {}", a.total_misses());
    println!("  communicating        {:.1}%", a.comm_ratio() * 100.0);
    println!("  dynamic epochs/core  {:.1}", a.dynamic_epochs_per_core());
    let dist = a.hot_set_size_distribution(0.10);
    let total: u64 = dist.iter().sum::<u64>().max(1);
    println!(
        "  hot-set sizes        1:{:.0}% 2:{:.0}% 3:{:.0}% 4:{:.0}% >=5:{:.0}%",
        dist[0] as f64 / total as f64 * 100.0,
        dist[1] as f64 / total as f64 * 100.0,
        dist[2] as f64 / total as f64 * 100.0,
        dist[3] as f64 / total as f64 * 100.0,
        dist[4] as f64 / total as f64 * 100.0,
    );

    // 4. Cross-check against the execution-driven statistics.
    assert_eq!(a.total_misses(), stats.l2_misses);
    assert_eq!(a.comm_misses(), stats.comm_misses);
    println!("\ntrace-driven and execution-driven statistics agree.");
    let _ = std::fs::remove_file(path);
    Ok(())
}
