//! Building a custom workload with the spec API: a two-phase stencil code
//! with a tree-reduction critical section, mirroring the paper's §2
//! example program (interval A reads from parents, interval B pushes to
//! children).
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use spcp::system::{CmpSystem, MachineConfig, PredictorKind, ProtocolKind, RunConfig};
use spcp::workloads::{BenchmarkSpec, CsSpec, EpochSpec, Phase, SharingPattern};

fn tree_exchange() -> BenchmarkSpec {
    BenchmarkSpec {
        name: "tree-exchange",
        phases: vec![
            // Interval A: leaves pull from their parents (stable upward
            // partners).
            Phase::new(
                vec![EpochSpec::new(1, SharingPattern::Stable { offset: 4 })
                    .traffic(64, 64)
                    .private(16)],
                8,
            ),
            // Interval B: inner nodes push translated data toward their
            // children — the communication direction switches, which the
            // sync-point separating the intervals exposes.
            Phase::new(
                vec![
                    EpochSpec::new(
                        2,
                        SharingPattern::StableSwitch {
                            first: 4,
                            second: 12,
                            switch_at: 2,
                        },
                    )
                    .traffic(64, 64)
                    .private(16),
                    // A reduction epoch with a contended accumulator lock.
                    EpochSpec::new(3, SharingPattern::PrivateOnly)
                        .traffic(0, 0)
                        .private(8)
                        .critical_sections(CsSpec {
                            lock_base: 0,
                            num_locks: 1,
                            sections: 1,
                            accesses: 8,
                        }),
                ],
                8,
            ),
        ],
        seed_salt: 0x7ee,
        paper_comm_ratio: 0.7,
    }
}

fn main() {
    let spec = tree_exchange();
    println!(
        "custom spec '{}': {} static epochs, {} locks, ~{} ops/core",
        spec.name,
        spec.static_epochs(),
        spec.static_critical_sections(),
        spec.ops_per_core()
    );
    let workload = spec.generate(16, 1);

    let machine = MachineConfig::paper_16core();
    let dir = CmpSystem::run_workload(
        &workload,
        &RunConfig::new(machine.clone(), ProtocolKind::Directory),
    );
    let sp = CmpSystem::run_workload(
        &workload,
        &RunConfig::new(
            machine,
            ProtocolKind::Predicted(PredictorKind::sp_default()),
        ),
    );

    println!("\ncommunicating misses: {:.1}%", dir.comm_ratio() * 100.0);
    println!("SP accuracy: {:.1}%", sp.accuracy() * 100.0);
    let breakdown = sp.sp.expect("SP stats present");
    println!(
        "  correct by source: d0={} history={} lock={} recovery={}",
        breakdown.correct_d0,
        breakdown.correct_history,
        breakdown.correct_lock,
        breakdown.correct_recovery
    );
    println!(
        "miss latency: {:.1} -> {:.1} cycles ({:+.1}%)",
        dir.miss_latency.mean(),
        sp.miss_latency.mean(),
        (sp.miss_latency.mean() / dir.miss_latency.mean() - 1.0) * 100.0
    );
}
