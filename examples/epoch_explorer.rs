//! Explore the sync-epoch structure and communication signatures of a
//! benchmark — the §3 characterization as an interactive tool.
//!
//! Pass a benchmark name (default: bodytrack) and optionally a core index.
//!
//! ```sh
//! cargo run --release --example epoch_explorer -- streamcluster 3
//! ```

use spcp::sim::CoreId;
use spcp::system::{CmpSystem, MachineConfig, ProtocolKind, RunConfig};
use spcp::workloads::suite;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "bodytrack".into());
    let core: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(0);
    let spec = suite::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark '{name}'");
        std::process::exit(1);
    });

    let workload = spec.generate(16, 7);
    let stats = CmpSystem::run_workload(
        &workload,
        &RunConfig::new(MachineConfig::paper_16core(), ProtocolKind::Directory).recording(),
    );

    let records = &stats.epoch_records[core];
    println!(
        "{name}, core {core}: {} dynamic epoch instances, {} communicating misses machine-wide\n",
        records.len(),
        stats.comm_misses
    );
    println!(
        "{:<26} {:>8} {:>9}  hot set (10% threshold)",
        "epoch (static, instance)", "volume", "hot size"
    );
    for r in records.iter().take(40) {
        let hot = r.hot_set(0.10);
        let bits: String = (0..16)
            .map(|i| {
                if hot.contains(CoreId::new(i)) {
                    'X'
                } else {
                    '.'
                }
            })
            .collect();
        println!(
            "{:<26} {:>8} {:>9}  {}",
            format!("({}, {})", r.id, r.instance),
            r.total_volume(),
            hot.len(),
            bits
        );
    }
    if records.len() > 40 {
        println!("... ({} more instances)", records.len() - 40);
    }

    // Epoch-repeatability summary: how often does an instance's hot set
    // equal the previous instance's hot set of the same static epoch?
    let mut repeats = 0u64;
    let mut chances = 0u64;
    let mut last: std::collections::HashMap<_, _> = Default::default();
    for r in records {
        if r.total_volume() == 0 {
            continue;
        }
        let hot = r.hot_set(0.10);
        if let Some(prev) = last.insert(r.id, hot) {
            chances += 1;
            if prev == hot {
                repeats += 1;
            }
        }
    }
    if chances > 0 {
        println!(
            "\nhot-set stability: {:.1}% of instances repeat the previous instance's hot set",
            repeats as f64 / chances as f64 * 100.0
        );
    }
}
