//! Compare every destination-set predictor (SP, ADDR, INST, UNI) plus the
//! oracle bound on one benchmark — a miniature of the paper's Figure 12.
//!
//! Pass a benchmark name as the first argument (default: fluidanimate).
//!
//! ```sh
//! cargo run --release --example predictor_shootout -- ocean
//! ```

use spcp::system::{CmpSystem, MachineConfig, OracleBook, PredictorKind, ProtocolKind, RunConfig};
use spcp::workloads::suite;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "fluidanimate".into());
    let spec = suite::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark '{name}'; available:");
        for s in suite::all() {
            eprintln!("  {}", s.name);
        }
        std::process::exit(1);
    });
    let workload = spec.generate(16, 7);
    let machine = MachineConfig::paper_16core();

    let dir = CmpSystem::run_workload(
        &workload,
        &RunConfig::new(machine.clone(), ProtocolKind::Directory),
    );
    println!(
        "{name}: {} L2 misses, {:.1}% communicating\n",
        dir.l2_misses,
        dir.comm_ratio() * 100.0
    );
    println!(
        "{:<8} {:>9} {:>12} {:>13} {:>12}",
        "scheme", "accuracy", "+bandwidth", "miss latency", "storage(KB)"
    );

    // The a priori bound: record per-instance hot sets, then replay them.
    let rec = CmpSystem::run_workload(
        &workload,
        &RunConfig::new(machine.clone(), ProtocolKind::Directory).recording(),
    );
    let oracle_kind = PredictorKind::Oracle(OracleBook::from_records(&rec.epoch_records, 0.10));

    let schemes = [
        ("SP", PredictorKind::sp_default()),
        (
            "ADDR",
            PredictorKind::Addr {
                entries: None,
                macroblock_bytes: 256,
            },
        ),
        ("INST", PredictorKind::Inst { entries: None }),
        ("UNI", PredictorKind::Uni),
        ("ORACLE", oracle_kind),
    ];
    for (label, kind) in schemes {
        let s = CmpSystem::run_workload(
            &workload,
            &RunConfig::new(machine.clone(), ProtocolKind::Predicted(kind)),
        );
        println!(
            "{:<8} {:>8.1}% {:>11.1}% {:>12.1}c {:>12.2}",
            label,
            s.accuracy() * 100.0,
            (s.bandwidth() as f64 / dir.bandwidth() as f64 - 1.0) * 100.0,
            s.miss_latency.mean(),
            s.predictor_storage_bits as f64 / 8.0 / 1024.0,
        );
    }
    println!(
        "\n(directory baseline: miss latency {:.1}c; lower-left of the",
        dir.miss_latency.mean()
    );
    println!("accuracy/bandwidth plane wins — see fig12_tradeoff for the full study)");
}
