//! SPCP facade crate: re-exports the whole workspace public API.
//!
//! See the README for an overview; the crates are:
//!
//! * [`sim`] — discrete-event kernel (time, events, RNG, stats);
//! * [`noc`] — 4×4 2D mesh network-on-chip model;
//! * [`mem`] — caches, MESIF line states, full-map directory;
//! * [`sync`] — synchronization points and sync-epoch tracking;
//! * [`predict`] — **SP-prediction**, the paper's contribution;
//! * [`baselines`] — ADDR / INST / UNI comparison predictors;
//! * [`workloads`] — the 18 synthetic benchmark models;
//! * [`trace`] — miss/sync-point traces + trace-driven characterization;
//! * [`system`] — the 16-core CMP timing simulator tying it all together;
//! * [`harness`] — parallel sweep engine + golden-snapshot regression
//!   support (see `docs/HARNESS.md`);
//! * [`verify`] — exhaustive protocol model checker + sync-epoch race
//!   analysis (see `docs/VERIFY.md`).

#![warn(missing_docs)]

pub use spcp_baselines as baselines;
pub use spcp_core as predict;
pub use spcp_harness as harness;
pub use spcp_mem as mem;
pub use spcp_noc as noc;
pub use spcp_sim as sim;
pub use spcp_sync as sync;
pub use spcp_system as system;
pub use spcp_trace as trace;
pub use spcp_verify as verify;
pub use spcp_workloads as workloads;
